package duality

import (
	"context"
	"fmt"

	"extremalcq/internal/hom"
	"extremalcq/internal/instance"
	"extremalcq/internal/solve"
)

// DualOfSet computes a finite D such that (F, D) is a homomorphism
// duality for the given finite set F (all members must have c-acyclic
// cores over a binary schema): D consists of the products of one dual
// per member (proof of Theorem 3.31).
func DualOfSet(F []instance.Pointed) ([]instance.Pointed, error) {
	return dualOfSetCaps(context.Background(), F, DefaultCaps())
}

// DualOfSetCtx is DualOfSet under a solver context.
func DualOfSetCtx(ctx context.Context, F []instance.Pointed) ([]instance.Pointed, error) {
	return dualOfSetCaps(ctx, F, DefaultCaps())
}

// DualOfSetCaps is DualOfSet with explicit caps.
func DualOfSetCaps(F []instance.Pointed, caps Caps) ([]instance.Pointed, error) {
	return dualOfSetCaps(context.Background(), F, caps)
}

func dualOfSetCaps(ctx context.Context, F []instance.Pointed, caps Caps) ([]instance.Pointed, error) {
	if len(F) == 0 {
		return nil, fmt.Errorf("duality: dual of empty set is undefined (every instance would be an obstruction target)")
	}
	perMember := make([][]instance.Pointed, len(F))
	for i, f := range F {
		ds, err := dualOfCaps(ctx, f, caps)
		if err != nil {
			return nil, err
		}
		perMember[i] = ds
	}
	// Products over all picks. Guard against blow-up: the product domain
	// is the product of the factor domains, and core computation is only
	// affordable on small instances.
	const coreCap = 64
	acc := perMember[0]
	for _, ds := range perMember[1:] {
		var next []instance.Pointed
		for _, a := range acc {
			solve.Check(ctx)
			for _, d := range ds {
				if a.I.DomSize()*d.I.DomSize() > caps.MaxElements {
					return nil, ErrTooLarge
				}
				p, err := instance.ProductCtx(ctx, a, d)
				if err != nil {
					return nil, err
				}
				if p.I.DomSize() <= coreCap {
					p = hom.CoreCtx(ctx, p)
				}
				next = append(next, p)
				if len(next) > caps.MaxDuals {
					return nil, ErrTooLarge
				}
			}
		}
		acc = next
	}
	return acc, nil
}

// IsHomDuality reports, exactly, whether (F, D) is a homomorphism
// duality (the HomDual problem of Section 4). The procedure follows
// Prop 4.7: F is reduced to pairwise incomparable cores; every member
// must be c-acyclic (otherwise the answer is definitively false); then a
// known-correct dual D' of F is constructed and compared to D for mutual
// coverage. Requires a binary schema (ErrUnsupported otherwise).
func IsHomDuality(F, D []instance.Pointed) (bool, error) {
	return IsHomDualityCtx(context.Background(), F, D)
}

// IsHomDualityCtx is IsHomDuality under a solver context: the
// homomorphism checks and dual constructions are memoized through the
// caches carried by ctx and stop promptly on cancellation.
func IsHomDualityCtx(ctx context.Context, F, D []instance.Pointed) (bool, error) {
	if len(F) == 0 {
		return false, fmt.Errorf("duality: empty F never forms a duality (no instance lies above it)")
	}
	// Quick necessary condition: no f maps into any d (otherwise f is
	// both above F and below D).
	for _, f := range F {
		for _, d := range D {
			if hom.ExistsCtx(ctx, f, d) {
				return false, nil
			}
		}
	}
	Fmin := minimizeLower(ctx, F)
	for _, f := range Fmin {
		if !instance.CAcyclic(hom.CoreCtx(ctx, f)) {
			// The left-hand side of a finite duality must consist of
			// c-acyclic cores (Prop 4.7).
			return false, nil
		}
	}
	Dprime, err := DualOfSetCtx(ctx, Fmin)
	if err != nil {
		return false, err
	}
	// (F, D) is a duality iff D and D' are hom-equivalent as downsets:
	// every d in D maps into some d' in D' and vice versa.
	for _, d := range D {
		if !hom.ExistsToAnyCtx(ctx, d, Dprime) {
			return false, nil
		}
	}
	for _, dp := range Dprime {
		if !hom.ExistsToAnyCtx(ctx, dp, D) {
			return false, nil
		}
	}
	return true, nil
}

// minimizeLower keeps hom-minimal representatives of F: f is dropped if
// some other member maps into it (the remaining members generate the
// same upward closure).
func minimizeLower(ctx context.Context, F []instance.Pointed) []instance.Pointed {
	var out []instance.Pointed
	for i, f := range F {
		dominated := false
		for j, g := range F {
			if i == j {
				continue
			}
			if hom.ExistsCtx(ctx, g, f) && !(hom.ExistsCtx(ctx, f, g) && j > i) {
				// g is below f; keep g (ties broken by index).
				if !hom.ExistsCtx(ctx, f, g) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return F[:1]
	}
	return out
}

// MaximizeUpper keeps hom-maximal representatives of D: d is dropped if
// it maps into some other member (same downward closure).
func MaximizeUpper(D []instance.Pointed) []instance.Pointed {
	return maximizeUpper(context.Background(), D)
}

func maximizeUpper(ctx context.Context, D []instance.Pointed) []instance.Pointed {
	var out []instance.Pointed
	for i, d := range D {
		dominated := false
		for j, g := range D {
			if i == j {
				continue
			}
			if hom.ExistsCtx(ctx, d, g) {
				if !hom.ExistsCtx(ctx, g, d) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out = append(out, d)
		}
	}
	if len(out) == 0 && len(D) > 0 {
		return D[:1]
	}
	return out
}

// GHRV returns the Gallai–Hasse–Roy–Vitaver duality of Example 2.14:
// ({P_n}, {T_n}) where P_n is the directed path with n edges (n+1
// vertices) and T_n the transitive tournament on n elements: a digraph
// admits no homomorphic image of the (n+1)-vertex path iff it maps into
// the linear order on n elements.
func GHRV(n int) (F, D []instance.Pointed) {
	F = []instance.Pointed{pathN(n)}
	D = []instance.Pointed{tournamentN(n)}
	return F, D
}

func pathN(n int) instance.Pointed {
	in := instance.New(schemaR())
	for i := 0; i < n; i++ {
		mustAdd(in, "R", val("p", i), val("p", i+1))
	}
	return instance.NewPointed(in)
}

func tournamentN(n int) instance.Pointed {
	in := instance.New(schemaR())
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(in, "R", val("t", i), val("t", j))
		}
	}
	return instance.NewPointed(in)
}

func val(p string, i int) instance.Value {
	return instance.Value(fmt.Sprintf("%s%d", p, i))
}
