// Package duality implements homomorphism dualities (Section 2.2):
//
//   - DualOf: given a c-acyclic data example e over a binary schema,
//     constructs a finite set D with ({e}, D) a homomorphism duality
//     (Theorem 2.16(2)). The construction builds, per connected
//     component and per equality type of the distinguished tuple, a
//     "failure-certificate" structure whose elements encode which
//     subtrees of the component cannot be realized at a target element,
//     together with a chosen justification. This is the classical
//     canonical-dual idea behind duals of trees (Nešetřil–Tardif),
//     extended to distinguished elements.
//   - IsHomDuality: exact verification that a pair (F, D) is a
//     homomorphism duality (Prop 4.7's route: duals of the F-side are
//     constructed and compared to D).
//   - SingleDualityExists: the Larose–Loten–Tardif dismantling test for
//     the existence of a duality ({e}, D) (used for most-general UCQ
//     existence, Theorem 4.6(2)).
//
// All constructions require binary schemas (arity <= 2), which covers
// every example family in the paper; higher arities yield ErrUnsupported.
package duality

import (
	"context"
	"errors"
	"fmt"

	"extremalcq/internal/hom"
	"extremalcq/internal/instance"
	"extremalcq/internal/schema"
)

// ErrUnsupported marks inputs outside the implemented fragment.
var ErrUnsupported = errors.New("duality: unsupported input (requires a binary schema and c-acyclic core)")

// ErrTooLarge is returned when a dual construction would exceed the
// configured caps.
var ErrTooLarge = errors.New("duality: construction exceeds size caps")

// Caps bounds the dual construction.
type Caps struct {
	MaxElements int // per dual structure
	MaxDuals    int // total number of structures in the dual set
}

// DefaultCaps returns caps generous enough for all paper workloads. It
// is a function rather than a package-level variable (cqlint:noglobals):
// a shared mutable default would couple every engine in the process.
func DefaultCaps() Caps {
	return Caps{MaxElements: 4096, MaxDuals: 512}
}

// DualOf computes a finite set D of pointed instances such that
// ({e}, D) is a homomorphism duality: for every data example x of the
// same schema and arity, x maps into some member of D iff e does not map
// into x. Requires the core of e to be c-acyclic and the schema binary.
func DualOf(e instance.Pointed) ([]instance.Pointed, error) {
	return DualOfCaps(e, DefaultCaps())
}

// DualOfCtx is DualOf under a solver context (see DualOfCaps).
func DualOfCtx(ctx context.Context, e instance.Pointed) ([]instance.Pointed, error) {
	return dualOfCaps(ctx, e, DefaultCaps())
}

// DualOfCaps is DualOf with explicit size caps.
func DualOfCaps(e instance.Pointed, caps Caps) ([]instance.Pointed, error) {
	return dualOfCaps(context.Background(), e, caps)
}

func dualOfCaps(ctx context.Context, e instance.Pointed, caps Caps) ([]instance.Pointed, error) {
	sch := e.I.Schema()
	if !sch.Binary() {
		return nil, ErrUnsupported
	}
	core := hom.CoreCtx(ctx, e)
	if !instance.CAcyclic(core) {
		return nil, fmt.Errorf("%w: core is not c-acyclic (Theorem 2.16)", ErrUnsupported)
	}
	k := core.Arity()
	var duals []instance.Pointed
	for _, theta := range partitions(k) {
		var ds []instance.Pointed
		var err error
		if coarsens(theta, core.EqualityType()) {
			ds, err = dualsForType(core, theta, caps)
			if err != nil {
				return nil, err
			}
		} else {
			// No data example of equality type theta can receive a
			// homomorphism from core; a complete absorber catches all of
			// them.
			ds = []instance.Pointed{absorber(sch, theta)}
		}
		duals = append(duals, ds...)
		if len(duals) > caps.MaxDuals {
			return nil, ErrTooLarge
		}
	}
	return duals, nil
}

// partitions enumerates all set partitions of {0..k-1} as class-index
// slices: part[i] = class of position i, classes numbered by first
// occurrence.
func partitions(k int) [][]int {
	if k == 0 {
		return [][]int{nil}
	}
	var out [][]int
	cur := make([]int, k)
	var rec func(i, maxClass int)
	rec = func(i, maxClass int) {
		if i == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for c := 0; c <= maxClass; c++ {
			cur[i] = c
			next := maxClass
			if c == maxClass {
				next++
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	return out
}

// coarsens reports whether partition theta merges at least the pairs the
// equality type et merges (et[i] = least j with tuple[j]==tuple[i]).
func coarsens(theta []int, et []int) bool {
	for i, j := range et {
		if j != i && theta[i] != theta[j] {
			return false
		}
	}
	return true
}

func deltaName(class int) instance.Value {
	return instance.Value(fmt.Sprintf("δ%d", class))
}

// absorber returns the complete structure on the theta-classes plus one
// extra element, with every possible fact; it receives every data
// example whose equality type is at most theta.
func absorber(sch *schema.Schema, theta []int) instance.Pointed {
	in := instance.New(sch)
	var values []instance.Value
	seen := map[int]bool{}
	for _, c := range theta {
		if !seen[c] {
			seen[c] = true
			values = append(values, deltaName(c))
		}
	}
	values = append(values, "⊥")
	addAllFacts(in, values)
	tuple := make([]instance.Value, len(theta))
	for i, c := range theta {
		tuple[i] = deltaName(c)
	}
	return instance.NewPointed(in, tuple...)
}

func addAllFacts(in *instance.Instance, values []instance.Value) {
	for _, r := range in.Schema().Relations() {
		switch r.Arity {
		case 1:
			for _, v := range values {
				mustAdd(in, r.Name, v)
			}
		case 2:
			for _, v := range values {
				for _, w := range values {
					mustAdd(in, r.Name, v, w)
				}
			}
		}
	}
}

// dualsForType builds the certificate duals for every connected
// component of core, for data examples of equality type theta (which
// coarsens core's own type).
func dualsForType(core instance.Pointed, theta []int, caps Caps) ([]instance.Pointed, error) {
	comps := instance.Components(core)
	var out []instance.Pointed
	for _, comp := range comps {
		ds, err := componentDuals(comp, core.Tuple, theta, caps)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	if len(comps) == 0 {
		// e has no facts: impossible for data examples (every
		// distinguished element occurs in a fact), except k=0 with the
		// empty instance, which maps everywhere: the duality is ({e}, ∅).
		return nil, nil
	}
	return out, nil
}

// mustAdd adds a fact that is valid by construction.
func mustAdd(in *instance.Instance, rel string, args ...instance.Value) {
	if err := in.AddFact(rel, args...); err != nil {
		panic(fmt.Sprintf("duality: internal fact %s%v invalid: %v", rel, args, err))
	}
}
