package duality

import (
	"fmt"
	"sort"
	"strings"

	"extremalcq/internal/instance"
	"extremalcq/internal/schema"
)

// option is one justification choice at an existential tree node: a
// reason why the subtree rooted there cannot be realized at a target
// element.
type option struct {
	kind  byte // 'u' unary, 'd' distinguished edge, 'c' child edge
	rel   string
	class int  // for 'd': the theta-class of the distinguished endpoint
	dir   byte // 'o' fact rel(t, ·), 'i' fact rel(·, t)
	child int  // for 'c': index of the child node
}

func (o option) key() string {
	return fmt.Sprintf("%c%s%d%c%d", o.kind, o.rel, o.class, o.dir, o.child)
}

// componentDuals builds the certificate duals of one connected component
// (Example 2.3 sense) of a c-acyclic core, for data examples whose
// equality type is theta. Every element of a dual structure — including
// the distinguished ones — carries a failure certificate (S, χ): S is a
// set of tree nodes whose subtrees cannot be realized at a target
// element, and χ justifies each member of S by a missing unary fact, a
// missing edge to a distinguished element, or a child all of whose
// witnesses fail. Since the distinguished elements of a structure are
// fixed, one structure per assignment of certificates to the
// distinguished classes is produced.
//
// The returned set D satisfies: for every data example x of type theta,
// x maps into some member of D iff the component (with the full
// distinguished tuple) does not map into x.
func componentDuals(comp instance.Pointed, tuple []instance.Value, theta []int, caps Caps) ([]instance.Pointed, error) {
	sch := comp.I.Schema()
	distClass := make(map[instance.Value]int, len(tuple))
	for i, d := range tuple {
		distClass[d] = theta[i]
	}
	classSet := map[int]bool{}
	for _, c := range theta {
		classSet[c] = true
	}
	var classes []int
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	dTuple := make([]instance.Value, len(theta))
	for i, c := range theta {
		dTuple[i] = deltaName(c)
	}

	// Existential elements of the component.
	var exist []instance.Value
	for _, v := range comp.I.Dom() {
		if _, isDist := distClass[v]; !isDist {
			exist = append(exist, v)
		}
	}

	if len(exist) == 0 {
		// All-distinguished component: one or more facts entirely over
		// distinguished elements. The component fails at x iff x lacks
		// (at least) one of the theta-images of those facts; the duals
		// are the complete structures on the classes plus ⊥ minus one
		// such fact each.
		var out []instance.Pointed
		for _, f := range comp.I.Facts() {
			in := instance.New(sch)
			var values []instance.Value
			for _, c := range classes {
				values = append(values, deltaName(c))
			}
			values = append(values, "⊥")
			addAllFacts(in, values)
			args := make([]instance.Value, len(f.Args))
			for i, a := range f.Args {
				args[i] = deltaName(distClass[a])
			}
			removeFact(in, instance.Fact{Rel: f.Rel, Args: args})
			out = append(out, instance.NewPointed(in, dTuple...))
		}
		return out, nil
	}

	// Build the rooted existential tree and enumerate certificates.
	tree, err := buildTree(comp, exist, distClass)
	if err != nil {
		return nil, err
	}
	chis, err := enumerateChoices(tree, caps)
	if err != nil {
		return nil, err
	}

	// One structure per assignment of certificates to the classes.
	nStructs := 1
	for range classes {
		nStructs *= len(chis)
		if nStructs > caps.MaxDuals {
			return nil, ErrTooLarge
		}
	}
	assignment := make([]*choice, len(classes))
	var out []instance.Pointed
	var build func(ci int) error
	build = func(ci int) error {
		if ci == len(classes) {
			st, err := assemble(sch, classes, assignment, chis, dTuple, caps)
			if err != nil {
				return err
			}
			out = append(out, st)
			return nil
		}
		for _, chi := range chis {
			assignment[ci] = chi
			if err := build(ci + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(0); err != nil {
		return nil, err
	}
	return out, nil
}

// element is a node of a dual structure: a certificate, possibly serving
// as a distinguished class representative.
type element struct {
	name  instance.Value
	class int // -1 for ordinary certificate elements
	chi   *choice
}

// assemble builds one dual structure for a fixed assignment of
// certificates to the distinguished classes.
func assemble(sch *schema.Schema, classes []int, assignment []*choice, chis []*choice, dTuple []instance.Value, caps Caps) (instance.Pointed, error) {
	var elems []element
	for i, c := range classes {
		elems = append(elems, element{name: deltaName(c), class: c, chi: assignment[i]})
	}
	for _, chi := range chis {
		elems = append(elems, element{name: "u" + chi.name, class: -1, chi: chi})
	}
	if len(elems) > caps.MaxElements {
		return instance.Pointed{}, ErrTooLarge
	}

	in := instance.New(sch)
	for _, r := range sch.Relations() {
		switch r.Arity {
		case 1:
			for _, el := range elems {
				if !el.chi.hasUnary(r.Name) {
					mustAdd(in, r.Name, el.name)
				}
			}
		case 2:
			for _, v := range elems {
				for _, w := range elems {
					if binaryFactAllowed(r.Name, v, w) {
						mustAdd(in, r.Name, v.name, w.name)
					}
				}
			}
		}
	}
	return instance.NewPointed(in, dTuple...), nil
}

// binaryFactAllowed applies the certificate rules to a fact rel(v, w):
//   - a child justification (child k, rel, out) in v demands k ∈ S(w);
//   - a child justification (child k, rel, in) in w demands k ∈ S(v);
//   - a distinguished-edge justification (rel, J, out) in v forbids the
//     fact when w is the class-J element;
//   - a distinguished-edge justification (rel, J, in) in w forbids the
//     fact when v is the class-J element.
func binaryFactAllowed(rel string, v, w element) bool {
	for _, jc := range v.chi.childJust {
		if jc.rel == rel && jc.dir == 'o' && w.chi.assign[jc.child] == -1 {
			return false
		}
	}
	for _, jc := range w.chi.childJust {
		if jc.rel == rel && jc.dir == 'i' && v.chi.assign[jc.child] == -1 {
			return false
		}
	}
	if w.class >= 0 && v.chi.hasDist(rel, w.class, 'o') {
		return false
	}
	if v.class >= 0 && w.chi.hasDist(rel, v.class, 'i') {
		return false
	}
	return true
}

// removeFact deletes a fact from an instance by rebuilding (Instance has
// no delete; duals are built once, so this is fine).
func removeFact(in *instance.Instance, f instance.Fact) {
	facts := in.Facts()
	fresh := instance.New(in.Schema())
	for _, g := range facts {
		if g.Key() != f.Key() {
			mustAdd(fresh, g.Rel, g.Args...)
		}
	}
	*in = *fresh
}

// treeNode is an existential element of the component with its
// justification options.
type treeNode struct {
	val     instance.Value
	options []option
}

type rootedTree struct {
	nodes []treeNode // nodes[0] is the root
	index map[instance.Value]int
}

// buildTree roots the existential part of the component and computes
// per-node options. The existential part of a c-acyclic component is a
// tree; we BFS-orient it from the smallest element.
func buildTree(comp instance.Pointed, exist []instance.Value, distClass map[instance.Value]int) (*rootedTree, error) {
	t := &rootedTree{index: make(map[instance.Value]int)}
	order := []instance.Value{exist[0]}
	parent := map[instance.Value]instance.Value{exist[0]: ""}
	seen := map[instance.Value]bool{exist[0]: true}
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, f := range comp.I.FactsContaining(v) {
			for _, a := range f.Args {
				if _, isDist := distClass[a]; isDist || a == v || seen[a] {
					continue
				}
				seen[a] = true
				parent[a] = v
				order = append(order, a)
			}
		}
	}
	if len(order) != len(exist) {
		return nil, fmt.Errorf("duality: internal: existential part of component not connected")
	}
	for i, v := range order {
		t.index[v] = i
		t.nodes = append(t.nodes, treeNode{val: v})
	}
	for i, v := range order {
		var opts []option
		seenKeys := map[string]bool{}
		add := func(o option) {
			if !seenKeys[o.key()] {
				seenKeys[o.key()] = true
				opts = append(opts, o)
			}
		}
		for _, f := range comp.I.FactsContaining(v) {
			switch len(f.Args) {
			case 1:
				add(option{kind: 'u', rel: f.Rel})
			case 2:
				x, y := f.Args[0], f.Args[1]
				cx, xDist := distClass[x]
				cy, yDist := distClass[y]
				switch {
				case x == v && yDist:
					add(option{kind: 'd', rel: f.Rel, class: cy, dir: 'o'})
				case y == v && xDist:
					add(option{kind: 'd', rel: f.Rel, class: cx, dir: 'i'})
				case x == v && !yDist:
					if parent[v] == y {
						continue
					}
					add(option{kind: 'c', rel: f.Rel, dir: 'o', child: t.index[y]})
				case y == v && !xDist:
					if parent[v] == x {
						continue
					}
					add(option{kind: 'c', rel: f.Rel, dir: 'i', child: t.index[x]})
				}
			}
		}
		t.nodes[i].options = opts
	}
	return t, nil
}

// choice is a χ: an assignment of an option index (or -1 for ⊤) to every
// tree node, with precomputed lookup tables. The root always carries a
// justification.
type choice struct {
	name      instance.Value
	assign    []int // option index per node, -1 = ⊤ (not in S)
	unaryJust map[string]bool
	distJust  map[string]bool // key rel|class|dir
	childJust []option
}

func (c *choice) hasUnary(rel string) bool { return c.unaryJust[rel] }

func (c *choice) hasDist(rel string, class int, dir byte) bool {
	return c.distJust[fmt.Sprintf("%s|%d|%c", rel, class, dir)]
}

// enumerateChoices lists all χ with χ(root) != ⊤.
func enumerateChoices(t *rootedTree, caps Caps) ([]*choice, error) {
	count := 1
	for i, n := range t.nodes {
		c := len(n.options)
		if i != 0 {
			c++ // ⊤ allowed off the root
		}
		if c == 0 {
			return nil, fmt.Errorf("duality: internal: root %s has no justification options", n.val)
		}
		count *= c
		if count > caps.MaxElements {
			return nil, ErrTooLarge
		}
	}
	var out []*choice
	assign := make([]int, len(t.nodes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(t.nodes) {
			out = append(out, makeChoice(t, assign))
			return
		}
		for oi := range t.nodes[i].options {
			assign[i] = oi
			rec(i + 1)
		}
		if i != 0 {
			assign[i] = -1
			rec(i + 1)
		}
	}
	rec(0)
	return out, nil
}

func makeChoice(t *rootedTree, assign []int) *choice {
	c := &choice{
		assign:    append([]int(nil), assign...),
		unaryJust: map[string]bool{},
		distJust:  map[string]bool{},
	}
	var sb strings.Builder
	sb.WriteString("s")
	for i, oi := range assign {
		if i > 0 {
			sb.WriteString(";")
		}
		if oi == -1 {
			sb.WriteString("-")
			continue
		}
		o := t.nodes[i].options[oi]
		sb.WriteString(o.key())
		switch o.kind {
		case 'u':
			c.unaryJust[o.rel] = true
		case 'd':
			c.distJust[fmt.Sprintf("%s|%d|%c", o.rel, o.class, o.dir)] = true
		case 'c':
			c.childJust = append(c.childJust, o)
		}
	}
	c.name = instance.Value(sb.String())
	return c
}
