package duality

import (
	"context"

	"extremalcq/internal/hom"
	"extremalcq/internal/instance"
	"extremalcq/internal/schema"
	"extremalcq/internal/solve"
)

// SingleDualityExists implements the Larose–Loten–Tardif dismantling
// test (as sketched in the proof of Theorem 3.30): there is a finite set
// F with (F, {e}) a homomorphism duality iff the square of the core of e
// dismantles to its diagonal, where dismantling repeatedly removes
// non-diagonal elements dominated by another element. Distinguished
// elements of the square are diagonal pairs and are never removed.
func SingleDualityExists(e instance.Pointed) bool {
	return SingleDualityExistsCtx(context.Background(), e)
}

// SingleDualityExistsCtx is SingleDualityExists under a solver context.
func SingleDualityExistsCtx(ctx context.Context, e instance.Pointed) bool {
	core := hom.CoreCtx(ctx, e)
	sq, err := instance.ProductCtx(ctx, core, core)
	if err != nil {
		return false
	}
	diag := make(map[instance.Value]bool)
	for _, a := range core.I.Dom() {
		diag[instance.PairValue(a, a)] = true
	}
	for _, a := range core.Tuple {
		diag[instance.PairValue(a, a)] = true
	}
	return dismantlesTo(ctx, sq.I, diag)
}

// DualityExistsForSet reports whether a finite F with (F, D) a
// homomorphism duality exists, for a set D: the hom-maximal members of D
// determine the downset, and a finite F exists iff each of them passes
// the single-instance test. (For the maximal members m_i, obstruction
// sets F_i combine into F = {disjoint unions of picks}; conversely each
// maximal member must individually be a right-hand side of a duality.)
func DualityExistsForSet(D []instance.Pointed) bool {
	return DualityExistsForSetCtx(context.Background(), D)
}

// DualityExistsForSetCtx is DualityExistsForSet under a solver context.
func DualityExistsForSetCtx(ctx context.Context, D []instance.Pointed) bool {
	if len(D) == 0 {
		return false
	}
	for _, d := range maximizeUpper(ctx, D) {
		if !SingleDualityExistsCtx(ctx, d) {
			return false
		}
	}
	return true
}

// dismantlesTo repeatedly removes an element outside keep that is
// dominated by some other remaining element, and reports whether all
// elements outside keep can be removed.
func dismantlesTo(ctx context.Context, in *instance.Instance, keep map[instance.Value]bool) bool {
	// Work on a mutable copy of the fact set.
	present := make(map[instance.Value]bool)
	for _, v := range in.Dom() {
		present[v] = true
	}
	facts := in.Facts()

	factsOK := func(f instance.Fact) bool {
		for _, a := range f.Args {
			if !present[a] {
				return false
			}
		}
		return true
	}
	hasFact := func(f instance.Fact) bool {
		if !in.Has(f) {
			return false
		}
		return factsOK(f)
	}
	dominated := func(x, y instance.Value) bool {
		for _, f := range facts {
			if !factsOK(f) || !f.Contains(x) {
				continue
			}
			for i, a := range f.Args {
				if a != x {
					continue
				}
				args := append([]instance.Value(nil), f.Args...)
				args[i] = y
				if !hasFact(instance.Fact{Rel: f.Rel, Args: args}) {
					return false
				}
			}
		}
		return true
	}

	for {
		solve.Check(ctx)
		removedAny := false
		for x := range present {
			if keep[x] {
				continue
			}
			for y := range present {
				if y == x {
					continue
				}
				if dominated(x, y) {
					delete(present, x)
					removedAny = true
					break
				}
			}
			if removedAny {
				break
			}
		}
		if !removedAny {
			break
		}
	}
	for v := range present {
		if !keep[v] {
			return false
		}
	}
	return true
}

func schemaR() *schema.Schema {
	return schema.MustNew(schema.Relation{Name: "R", Arity: 2})
}
