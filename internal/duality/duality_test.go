package duality

import (
	"fmt"
	"math/rand"
	"testing"

	"extremalcq/internal/genex"
	"extremalcq/internal/hom"
	"extremalcq/internal/instance"
	"extremalcq/internal/schema"
)

var binR = genex.SchemaR()

var pqr = schema.MustNew(
	schema.Relation{Name: "P", Arity: 1},
	schema.Relation{Name: "Q", Arity: 1},
	schema.Relation{Name: "R", Arity: 1},
)

func pt(t *testing.T, sch *schema.Schema, s string) instance.Pointed {
	t.Helper()
	p, err := instance.ParsePointed(sch, s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return p
}

// checkDualityOn verifies the duality property on the given samples:
// for each x, (some f in F maps to x) XOR (x maps to some d in D).
func checkDualityOn(t *testing.T, F, D []instance.Pointed, samples []instance.Pointed) {
	t.Helper()
	for _, x := range samples {
		above := false
		for _, f := range F {
			if hom.Exists(f, x) {
				above = true
				break
			}
		}
		below := hom.ExistsToAny(x, D)
		if above == below {
			t.Errorf("duality violated on sample:\n x=%v\n above(F->x)=%v below(x->D)=%v", x, above, below)
		}
	}
}

// Example 2.14: the Gallai–Hasse–Roy–Vitaver duality ({P_n}, {T_{n-1}}).
// This cross-validates the certificate dual construction against a
// classical theorem via IsHomDuality.
func TestGHRVIsDuality(t *testing.T) {
	for n := 2; n <= 4; n++ {
		F, D := GHRV(n)
		ok, err := IsHomDuality(F, D)
		if err != nil {
			t.Fatalf("GHRV(%d): %v", n, err)
		}
		if !ok {
			t.Errorf("GHRV(%d) should be a homomorphism duality", n)
		}
	}
	// Mismatched pair is not a duality.
	F, _ := GHRV(3)
	bad := []instance.Pointed{genex.TransitiveTournament(4)}
	ok, err := IsHomDuality(F, bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("({P_3},{T_4}) must not be a duality (P_3 maps into T_4)")
	}
}

// Example 2.15: ({e1}, {e2,e3}) with unary relations.
func TestExample215(t *testing.T) {
	e1 := pt(t, pqr, "P(a). Q(b)")
	e2 := pt(t, pqr, "P(a). R(a)")
	e3 := pt(t, pqr, "Q(a). R(a)")
	ok, err := IsHomDuality([]instance.Pointed{e1}, []instance.Pointed{e2, e3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Example 2.15 should be a homomorphism duality")
	}
	// Dropping one right-hand side breaks it.
	ok, err = IsHomDuality([]instance.Pointed{e1}, []instance.Pointed{e2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("({e1},{e2}) should not be a duality")
	}
	// Direct construction: duals of the two components are (equivalent
	// to) "everything but P" and "everything but Q".
	D, err := DualOf(e1)
	if err != nil {
		t.Fatal(err)
	}
	checkDualityOn(t, []instance.Pointed{e1}, D, []instance.Pointed{
		e1, e2, e3,
		pt(t, pqr, "P(a)"),
		pt(t, pqr, "Q(a)"),
		pt(t, pqr, "R(a)"),
		pt(t, pqr, "P(a). Q(a)"),
		pt(t, pqr, "P(a). Q(b). R(c)"),
	})
}

func TestDualOfRequiresCAcyclic(t *testing.T) {
	loop := pt(t, binR, "R(a,a)")
	if _, err := DualOf(loop); err == nil {
		t.Error("dual of a non-c-acyclic instance must fail")
	}
	tern := schema.MustNew(schema.Relation{Name: "T", Arity: 3})
	e := pt(t, tern, "T(a,b,c)")
	if _, err := DualOf(e); err == nil {
		t.Error("non-binary schema must be unsupported")
	}
}

// Property test: on random oriented trees (k=0 and k=1), the constructed
// dual set satisfies the duality property against a battery of samples.
func TestDualOfPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		k := trial % 2
		e := randomTree(rng, 2+rng.Intn(3), k)
		core := hom.Core(e)
		if !core.HasUNP() {
			continue
		}
		D, err := DualOf(e)
		if err != nil {
			t.Fatalf("DualOf(%v): %v", e, err)
		}
		samples := []instance.Pointed{e, core}
		for i := 0; i < 8; i++ {
			samples = append(samples, genex.RandomPointed(rng, binR, 3, 4, k))
			samples = append(samples, randomTree(rng, 2+rng.Intn(3), k))
		}
		// Products of e with samples (below e) and unions (above e).
		if p, err := instance.Product(e, samples[2]); err == nil {
			samples = append(samples, p)
		}
		checkDualityOn(t, []instance.Pointed{e}, D, samples)
	}
}

// Property test for set duals: (F, DualOfSet(F)) is a duality on samples.
func TestDualOfSetPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		F := []instance.Pointed{
			randomTree(rng, 2+rng.Intn(2), 0),
			randomTree(rng, 2+rng.Intn(2), 0),
		}
		D, err := DualOfSet(F)
		if err != nil {
			t.Fatalf("DualOfSet: %v", err)
		}
		var samples []instance.Pointed
		samples = append(samples, F...)
		for i := 0; i < 8; i++ {
			samples = append(samples, genex.RandomPointed(rng, binR, 3, 4, 0))
		}
		checkDualityOn(t, F, D, samples)
	}
}

// Distinguished elements: dual of a rooted edge.
func TestDualOfRootedEdge(t *testing.T) {
	e := pt(t, binR, "R(x,y) @ x")
	D, err := DualOf(e)
	if err != nil {
		t.Fatal(err)
	}
	// Samples: rooted instances where the root has / lacks an out-edge.
	samples := []instance.Pointed{
		pt(t, binR, "R(a,b) @ a"),         // has out-edge: e maps
		pt(t, binR, "R(b,a) @ a"),         // only in-edge: e does not map
		pt(t, binR, "R(a,a) @ a"),         // loop: e maps
		pt(t, binR, "R(b,c). R(c,a) @ a"), // no out-edge at root
		pt(t, binR, "R(a,b). R(b,a) @ a"), // out-edge present
	}
	checkDualityOn(t, []instance.Pointed{e}, D, samples)
}

// Equality types: dual of a 2-ary example with distinct tuple must also
// classify repeated-tuple samples correctly.
func TestDualOfEqualityTypes(t *testing.T) {
	e := pt(t, binR, "R(x,y) @ x, y")
	D, err := DualOf(e)
	if err != nil {
		t.Fatal(err)
	}
	samples := []instance.Pointed{
		pt(t, binR, "R(a,b) @ a, b"), // e maps
		pt(t, binR, "R(b,a) @ a, b"), // e does not map
		pt(t, binR, "R(a,a) @ a, a"), // repeated tuple; e maps (x,y -> a,a)
		pt(t, binR, "R(a,b) @ a, a"), // repeated tuple; e needs R(a,a): no
		pt(t, binR, "R(a,b) @ b, a"), // reversed: no
	}
	checkDualityOn(t, []instance.Pointed{e}, D, samples)
}

// The left-hand side of a duality must be c-acyclic: IsHomDuality
// rejects a loop on the left.
func TestIsHomDualityRejectsCyclicLeft(t *testing.T) {
	loop := pt(t, binR, "R(a,a)")
	ok, err := IsHomDuality([]instance.Pointed{loop}, []instance.Pointed{genex.TransitiveTournament(2)})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("cyclic left-hand side cannot form a duality")
	}
}

// LLT dismantling: known positives and negatives.
func TestSingleDualityExists(t *testing.T) {
	cases := []struct {
		name string
		e    instance.Pointed
		want bool
	}{
		{"loop (CSP trivially true)", pt(t, binR, "R(a,a)"), true},
		{"single edge T2", genex.TransitiveTournament(2), true},
		{"tournament T3", genex.TransitiveTournament(3), true},
		{"K2 = 2-cycle (2-colorability not FO)", genex.DirectedCycle(2), false},
		{"directed 3-cycle", genex.DirectedCycle(3), false},
		{"path P2 (infinite oriented-path antichain)", genex.DirectedPath(2), false},
		{"single element with P,Q", pt(t, pqr, "P(a). Q(a)"), true},
		{"two unary elements", pt(t, pqr, "P(a). Q(b)"), true},
	}
	for _, c := range cases {
		if got := SingleDualityExists(c.e); got != c.want {
			t.Errorf("%s: SingleDualityExists = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDualityExistsForSet(t *testing.T) {
	// {K2, loop}: K2 maps into the loop, so the downset is generated by
	// the loop alone, which passes.
	k2 := genex.DirectedCycle(2)
	loop := pt(t, binR, "R(a,a)")
	if !DualityExistsForSet([]instance.Pointed{k2, loop}) {
		t.Error("{K2, loop}: downset is everything; F = ∅ works")
	}
	if DualityExistsForSet([]instance.Pointed{k2}) {
		t.Error("{K2} alone has no finite duality")
	}
	if DualityExistsForSet(nil) {
		t.Error("empty set: no duality")
	}
	// Example 2.15 right-hand side.
	e2 := pt(t, pqr, "P(a). R(a)")
	e3 := pt(t, pqr, "Q(a). R(a)")
	if !DualityExistsForSet([]instance.Pointed{e2, e3}) {
		t.Error("Example 2.15 right side admits a duality")
	}
}

// Tournaments as duals of paths: DualOf(P_n) must be hom-equivalent to
// {T_{n-1}} — the sharpest single test of the certificate construction.
func TestDualOfPathEquivalentToTournament(t *testing.T) {
	for n := 2; n <= 4; n++ {
		p := genex.DirectedPath(n)
		D, err := DualOf(p)
		if err != nil {
			t.Fatalf("DualOf(P_%d): %v", n, err)
		}
		tn := genex.TransitiveTournament(n)
		if !hom.ExistsToAny(tn, D) {
			t.Errorf("T_%d should map into DualOf(P_%d)", n, n)
		}
		for _, d := range D {
			if !hom.Exists(d, tn) {
				t.Errorf("a member of DualOf(P_%d) does not map into T_%d", n, n)
			}
		}
	}
}

func randomTree(rng *rand.Rand, n, k int) instance.Pointed {
	in := instance.New(binR)
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		a := instance.Value(fmt.Sprintf("t%d", parent))
		b := instance.Value(fmt.Sprintf("t%d", i))
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		if err := in.AddFact("R", a, b); err != nil {
			panic(err)
		}
	}
	var tuple []instance.Value
	used := map[int]bool{}
	for i := 0; i < k; i++ {
		x := rng.Intn(n)
		for used[x] {
			x = (x + 1) % n
		}
		used[x] = true
		tuple = append(tuple, instance.Value(fmt.Sprintf("t%d", x)))
	}
	return instance.NewPointed(in, tuple...)
}
