// Benchmarks regenerating the paper's evaluation artifacts: one
// benchmark (family) per row of Tables 1–3 and per figure/size-theorem
// workload. Absolute timings are machine-dependent; the *shape* —
// which problems are cheap (PTime rows), which blow up exponentially
// (product-based rows), and how witness sizes scale (Thm 3.40/3.41/3.42,
// Thm 5.37) — mirrors the paper. Size metrics are attached with
// b.ReportMetric so `go test -bench` output doubles as the experiment
// record (see EXPERIMENTS.md).
package extremalcq

import (
	"context"
	"fmt"
	"testing"

	"extremalcq/internal/cq"
	"extremalcq/internal/cqtree"
	"extremalcq/internal/duality"
	"extremalcq/internal/engine"
	"extremalcq/internal/fitting"
	"extremalcq/internal/genex"
	"extremalcq/internal/instance"
	"extremalcq/internal/tree"
	"extremalcq/internal/ucqfit"
)

func mustPointed(sch *Schema, s string) Example {
	p, err := instance.ParsePointed(sch, s)
	if err != nil {
		panic(err)
	}
	return p
}

var rpqSchema = MustSchema(
	Rel{Name: "R", Arity: 2},
	Rel{Name: "P", Arity: 1},
	Rel{Name: "Q", Arity: 1},
)

// ---------------------------------------------------------------------
// Table 1 — CQs
// ---------------------------------------------------------------------

// Row "Any Fitting" / Verification (DP-complete; Thm 3.1): the
// exact-4-colorability workload.
func BenchmarkT1AnyVerify(b *testing.B) {
	e := fitting.MustExamples(genex.SchemaR(), 0,
		[]Example{genex.Clique(4)}, []Example{genex.Clique(3)})
	q := cq.MustFromExample(genex.Clique(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !fitting.Verify(q, e) {
			b.Fatal("K4 must verify")
		}
	}
}

// Row "Any Fitting" / Existence + Construction (coNExpTime-c /
// ExpTime; Thm 3.2/3.3): the prime-cycle family. The positive product —
// and with it the cost — grows as the product of the primes.
func BenchmarkT1AnyExistence(b *testing.B) {
	for n := 2; n <= 4; n++ {
		pos, neg := genex.PrimeCycleFamily(n)
		e := fitting.MustExamples(genex.SchemaR(), 0, pos, neg)
		b.Run(fmt.Sprintf("primes=%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				q, ok, err := fitting.Construct(e)
				if err != nil || !ok {
					b.Fatal("fitting must exist")
				}
				size = q.NumVars()
			}
			b.ReportMetric(float64(size), "fitting_vars")
		})
	}
}

// Row "Most-Specific" / Verification (NExpTime-c; Thm 3.7): the product
// homomorphism workload of Thm 3.38(1).
func BenchmarkT1MostSpecificVerify(b *testing.B) {
	j := genex.DirectedCycle(6)
	u1, _ := instance.DisjointUnion(genex.DirectedCycle(2), j)
	u2, _ := instance.DisjointUnion(genex.DirectedCycle(3), j)
	e := fitting.MustExamples(genex.SchemaR(), 0, []Example{u1, u2}, nil)
	q := cq.MustFromExample(j)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !fitting.VerifyMostSpecific(q, e) {
			b.Fatal("C6 must be most-specific")
		}
	}
}

// Row "Weakly Most-General" / Verification (NP-c; Thm 3.12): frontier
// construction plus homomorphism checks, Example 3.10(4).
func BenchmarkT1WMGVerify(b *testing.B) {
	e := fitting.MustExamples(rpqSchema, 0, nil, []Example{
		mustPointed(rpqSchema, "R(u,v). R(v,u)"),
		mustPointed(rpqSchema, "P(a)"),
		mustPointed(rpqSchema, "Q(a)"),
	})
	q := cq.MustParse(rpqSchema, "q() :- P(x), Q(y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := fitting.VerifyWeaklyMostGeneral(q, e)
		if err != nil || !ok {
			b.Fatal("P∧Q must be weakly most-general")
		}
	}
}

// Row "Weakly Most-General" / Existence (ExpTime-c; Thm 3.13): bounded
// synthesis with the exact verifier on Example 3.10(2).
func BenchmarkT1WMGExistence(b *testing.B) {
	e := fitting.MustExamples(rpqSchema, 0, nil, []Example{
		mustPointed(rpqSchema, "P(a)"),
		mustPointed(rpqSchema, "Q(a)"),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, found, err := fitting.SearchWeaklyMostGeneral(e, fitting.DefaultSearch())
		if err != nil || !found {
			b.Fatal("a weakly most-general fitting exists")
		}
	}
}

// Row "Basis of Most-General" / Verification (NExpTime-c; Thm 3.31):
// duality construction + relativized product checks, Example 3.10(2).
func BenchmarkT1BasisVerify(b *testing.B) {
	e := fitting.MustExamples(rpqSchema, 0, nil, []Example{
		mustPointed(rpqSchema, "P(a)"),
		mustPointed(rpqSchema, "Q(a)"),
	})
	basis := []*cq.CQ{
		cq.MustParse(rpqSchema, "q() :- R(x,y)"),
		cq.MustParse(rpqSchema, "q() :- P(x), Q(y)"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := fitting.VerifyBasis(basis, e)
		if err != nil || !ok {
			b.Fatal("the basis must verify")
		}
	}
}

// Row "Basis of Most-General" / Existence (NExpTime-c): bounded search
// on Example 3.10(2).
func BenchmarkT1BasisExistence(b *testing.B) {
	e := fitting.MustExamples(rpqSchema, 0, nil, []Example{
		mustPointed(rpqSchema, "P(a)"),
		mustPointed(rpqSchema, "Q(a)"),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis, found, err := fitting.SearchBasis(e, fitting.DefaultSearch())
		if err != nil || !found || len(basis) != 2 {
			b.Fatal("basis of size 2 must be found")
		}
	}
}

// Row "Unique" / Verification + Existence (NExpTime-c; Thm 3.35):
// Example 3.33.
func BenchmarkT1UniqueExistence(b *testing.B) {
	i := instance.MustFromFacts(genex.SchemaR(),
		instance.NewFact("R", "a", "b"),
		instance.NewFact("R", "b", "a"),
		instance.NewFact("R", "b", "b"))
	e := fitting.MustExamples(genex.SchemaR(), 1,
		[]Example{instance.NewPointed(i, "b")},
		[]Example{instance.NewPointed(i, "a")})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, ok, err := fitting.ExistsUnique(e)
		if err != nil || !ok {
			b.Fatal("unique fitting must exist")
		}
	}
}

// Theorem 3.40: fitting size grows as the product of the primes (~2^n)
// from polynomially-sized examples.
func BenchmarkSizeLowerBoundCQ(b *testing.B) {
	for n := 2; n <= 5; n++ {
		pos, neg := genex.PrimeCycleFamily(n)
		e := fitting.MustExamples(genex.SchemaR(), 0, pos, neg)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var vars, input int
			for i := 0; i < b.N; i++ {
				q, ok, _ := fitting.Construct(e)
				if !ok {
					b.Fatal("must exist")
				}
				vars = q.NumVars()
				input = e.Size()
			}
			b.ReportMetric(float64(vars), "fitting_vars")
			b.ReportMetric(float64(input), "input_facts")
		})
	}
}

// Theorem 3.41: unique fitting CQs of size 2^n.
func BenchmarkSizeUniqueFitting(b *testing.B) {
	for n := 1; n <= 3; n++ {
		sch, pos, neg := genex.BitStringFamily(n)
		e := fitting.MustExamples(sch, 0, pos, []Example{neg})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var vars int
			for i := 0; i < b.N; i++ {
				q, ok, err := fitting.ExistsUnique(e)
				if err != nil || !ok {
					b.Fatal("unique fitting must exist (Thm 3.41)")
				}
				vars = q.NumVars()
			}
			b.ReportMetric(float64(vars), "unique_fitting_vars")
		})
	}
}

// Theorem 3.42: minimal bases with 2^(2^n) members (n=1: 4 members,
// each verified weakly most-general and pairwise incomparable).
func BenchmarkBasisCardinality(b *testing.B) {
	sch, pos, neg := genex.BasisFamily(1)
	e := fitting.MustExamples(sch, 0, pos, []Example{neg})
	members := genex.BasisMembers(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for _, m := range members {
			q := cq.MustFromExample(m)
			ok, err := fitting.VerifyWeaklyMostGeneral(q, e)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				count++
			}
		}
		if count != 4 {
			b.Fatalf("want 2^(2^1)=4 weakly most-general members, got %d", count)
		}
	}
	b.ReportMetric(4, "basis_members")
}

// ---------------------------------------------------------------------
// Table 2 — UCQs
// ---------------------------------------------------------------------

// Rows "Any"/"Most-Specific" (coNP-c existence, PTime construction,
// DP-c verification; Thm 4.6): graph-homomorphism workload.
func BenchmarkT2AnyUCQ(b *testing.B) {
	e := fitting.MustExamples(genex.SchemaR(), 0,
		[]Example{genex.DirectedCycle(3)},
		[]Example{genex.DirectedCycle(2)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, ok, err := ucqfit.Construct(e)
		if err != nil || !ok {
			b.Fatal("fitting UCQ must exist")
		}
		if !ucqfit.VerifyMostSpecific(u, e) {
			b.Fatal("canonical UCQ is most-specific")
		}
	}
}

// Row "Most-General" (NP-c existence via dismantling; Thm 4.6(2)).
func BenchmarkT2MostGeneralUCQ(b *testing.B) {
	e := fitting.MustExamples(genex.SchemaR(), 0,
		nil, []Example{genex.TransitiveTournament(3)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ucqfit.ExistsMostGeneral(e) {
			b.Fatal("most-general fitting UCQ exists for tournament negatives")
		}
	}
}

// Row "Unique" (HomDual-equivalent; Thm 4.8): Example 4.1.
func BenchmarkT2UniqueUCQ(b *testing.B) {
	pqr := MustSchema(Rel{Name: "P", Arity: 1}, Rel{Name: "Q", Arity: 1}, Rel{Name: "R", Arity: 1})
	e := fitting.MustExamples(pqr, 0,
		[]Example{mustPointed(pqr, "P(a). Q(a)"), mustPointed(pqr, "P(a). R(a)")},
		[]Example{mustPointed(pqr, "P(a). Q(b). R(b)")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := ucqfit.ExistsUnique(e)
		if err != nil || !ok {
			b.Fatal("Example 4.1 has a unique fitting UCQ")
		}
	}
}

// The HomDual problem itself (between NP and ExpTime; Prop 4.7): the
// GHRV family.
func BenchmarkHomDual(b *testing.B) {
	for n := 2; n <= 4; n++ {
		F, D := duality.GHRV(n)
		b.Run(fmt.Sprintf("path=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := duality.IsHomDuality(F, D)
				if err != nil || !ok {
					b.Fatal("GHRV must be a duality")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Table 3 — tree CQs
// ---------------------------------------------------------------------

var lraExamples = func() fitting.Examples {
	pos, neg := genex.DoubleExpTreeFamily(1)
	return fitting.MustExamples(genex.SchemaLRA(), 1, pos, neg)
}()

// Row "Any Fitting" / Verification (PTime; Thm 5.9).
func BenchmarkT3AnyTreeVerify(b *testing.B) {
	dag, ok, err := tree.Construct(lraExamples)
	if err != nil || !ok {
		b.Fatal("fitting must exist")
	}
	q, err := dag.Expand(100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fits, err := tree.Verify(q, lraExamples)
		if err != nil || !fits {
			b.Fatal("witness must fit")
		}
	}
}

// Row "Any Fitting" / Existence (ExpTime-c; Thm 5.10): product +
// simulation fixpoint.
func BenchmarkT3AnyTreeExistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ok, err := tree.Exists(lraExamples)
		if err != nil || !ok {
			b.Fatal("fitting must exist")
		}
	}
}

// Row "Most-Specific" (ExpTime-c; Thm 5.15/5.18): complete initial
// pieces via the greedy requirement closure.
func BenchmarkT3MostSpecificTree(b *testing.B) {
	sch := MustSchema(Rel{Name: "R", Arity: 2}, Rel{Name: "P", Arity: 1})
	pos := mustPointed(sch, "R(a,b). P(b) @ a")
	e := fitting.MustExamples(sch, 1, []Example{pos}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := tree.ConstructMostSpecific(e, 10000)
		if err != nil || !ok {
			b.Fatal("most-specific tree fitting must exist")
		}
	}
}

// Row "Weakly Most-General" / Verification (PTime; Thm 5.23):
// Example 5.20.
func BenchmarkT3WMGTree(b *testing.B) {
	e := fitting.MustExamples(rpqSchema, 1,
		[]Example{mustPointed(rpqSchema, "P(a). R(a,b). Q(b) @ a")},
		[]Example{
			mustPointed(rpqSchema, "P(a). R(a,b) @ a"),
			mustPointed(rpqSchema, "R(a,b). R(c,b). R(c,d). Q(d) @ a"),
		})
	q := cq.MustParse(rpqSchema, "q(x) :- R(x,y), Q(y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := tree.VerifyWeaklyMostGeneral(q, e)
		if err != nil || !ok {
			b.Fatal("Example 5.20's q is weakly most-general")
		}
	}
}

// Row "Unique" (ExpTime-c; Thm 5.25).
func BenchmarkT3UniqueTree(b *testing.B) {
	sch := MustSchema(Rel{Name: "R", Arity: 2}, Rel{Name: "P", Arity: 1})
	e := fitting.MustExamples(sch, 1,
		[]Example{mustPointed(sch, "R(a,b) @ a")},
		[]Example{mustPointed(sch, "P(a) @ a")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := tree.ExistsUnique(e)
		if err != nil || !ok {
			b.Fatal("unique tree fitting must exist")
		}
	}
}

// Row "Basis of Most-General" / Verification (ExpTime-c; Thm 5.28).
func BenchmarkT3BasisTree(b *testing.B) {
	sch := MustSchema(Rel{Name: "R", Arity: 2}, Rel{Name: "P", Arity: 1})
	e := fitting.MustExamples(sch, 1, nil, []Example{mustPointed(sch, "P(a) @ a")})
	basis, found, err := tree.SearchBasis(e, fitting.SearchOpts{MaxAtoms: 2, MaxVars: 3})
	if err != nil || !found {
		b.Skip("no basis within bounds for this workload")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := tree.VerifyBasis(basis, e)
		if err != nil || !ok {
			b.Fatal("basis must verify")
		}
	}
}

// Theorem 5.37 / Figure 5: fitting tree CQs of double-exponential size;
// the DAG stays small while the expanded tree explodes.
func BenchmarkSizeLowerBoundTreeCQ(b *testing.B) {
	for n := 1; n <= 3; n++ {
		pos, neg := genex.DoubleExpTreeFamily(n)
		e := fitting.MustExamples(genex.SchemaLRA(), 1, pos, neg)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var depth, dagNodes int
			var size uint64
			for i := 0; i < b.N; i++ {
				dag, ok, err := tree.Construct(e)
				if err != nil || !ok {
					b.Fatal("fitting must exist")
				}
				depth, dagNodes = dag.Depth, dag.NumNodes()
				size = dag.TreeSize(1 << 62)
			}
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(dagNodes), "dag_nodes")
			b.ReportMetric(float64(size), "tree_nodes")
		})
	}
}

// ---------------------------------------------------------------------
// Fitting engine — memoization and batching
// ---------------------------------------------------------------------

// engineT1Job is the Table 1 construction workload (prime-cycle family,
// product-dominated) as an engine job.
func engineT1Job() engine.Job {
	pos, neg := genex.PrimeCycleFamily(3)
	e := fitting.MustExamples(genex.SchemaR(), 0, pos, neg)
	return engine.Job{Kind: engine.KindCQ, Task: engine.TaskConstruct, Examples: e}
}

// engineT3Job is the Table 3 tree-construction workload (DAG
// construction plus expansion and core) as an engine job. The
// simulation fixpoint itself is not memoized; the final core is.
func engineT3Job() engine.Job {
	return engine.Job{Kind: engine.KindTree, Task: engine.TaskConstruct, Examples: lraExamples}
}

// Cold cache: every execution recomputes products, hom checks and cores
// from scratch (memoization disabled).
func BenchmarkEngineColdCache(b *testing.B) {
	for _, w := range []struct {
		name string
		job  engine.Job
	}{{"T1construct", engineT1Job()}, {"T3treeConstruct", engineT3Job()}} {
		b.Run(w.name, func(b *testing.B) {
			eng := engine.New(engine.Options{Workers: 1, CacheSize: -1})
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := eng.Do(context.Background(), w.job); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// Warm cache: the first execution fills the shared memo; repeats of the
// same workload are served from it. The cold/warm delta is the caching
// win on duplicate-heavy traffic.
func BenchmarkEngineWarmCache(b *testing.B) {
	for _, w := range []struct {
		name string
		job  engine.Job
	}{{"T1construct", engineT1Job()}, {"T3treeConstruct", engineT3Job()}} {
		b.Run(w.name, func(b *testing.B) {
			eng := engine.New(engine.Options{Workers: 1})
			defer eng.Close()
			if res := eng.Do(context.Background(), w.job); res.Err != nil {
				b.Fatal(res.Err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := eng.Do(context.Background(), w.job); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			b.StopTimer()
			if hits := eng.Stats().Cache.Hits(); hits == 0 {
				b.Fatal("warm run must hit the memo")
			}
		})
	}
}

// Batch of N duplicate jobs through the engine (worker pool + shared
// memo) vs N sequential direct library calls.
func BenchmarkEngineBatchVsSequential(b *testing.B) {
	const n = 16
	pos, neg := genex.PrimeCycleFamily(3)
	e := fitting.MustExamples(genex.SchemaR(), 0, pos, neg)

	b.Run("sequential-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < n; k++ {
				if _, ok, err := fitting.Construct(e); err != nil || !ok {
					b.Fatal("fitting must exist")
				}
			}
		}
		b.ReportMetric(n, "jobs/op")
	})

	b.Run("engine-batch", func(b *testing.B) {
		eng := engine.New(engine.Options{})
		defer eng.Close()
		jobs := make([]engine.Job, n)
		for k := range jobs {
			jobs[k] = engine.Job{Kind: engine.KindCQ, Task: engine.TaskConstruct, Examples: e}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.DoBatch(context.Background(), jobs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.ReportMetric(n, "jobs/op")
	})

	// Cold cache per op: a fresh engine receives the n duplicates with
	// nothing memoized, so the speedup over sequential-direct is pure
	// single-flight dedup (one computation, n-1 coalesced joins).
	b.Run("engine-batch-coldcache", func(b *testing.B) {
		jobs := make([]engine.Job, n)
		for k := range jobs {
			jobs[k] = engine.Job{Kind: engine.KindCQ, Task: engine.TaskConstruct, Examples: e}
		}
		var shared int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{Workers: n, QueueSize: n})
			for _, res := range eng.DoBatch(context.Background(), jobs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			shared += eng.Stats().DedupShared
			eng.Close()
		}
		b.ReportMetric(n, "jobs/op")
		b.ReportMetric(float64(shared)/float64(b.N), "deduped/op")
	})
}

// streamWMGJob is an enumeration workload with two weakly most-general
// answers inside a candidate space big enough that the first answer
// arrives long before the search ends — the shape streaming exists for.
func streamWMGJob(maxAtoms, maxVars int) engine.Job {
	e := fitting.MustExamples(rpqSchema, 0, nil, []Example{
		mustPointed(rpqSchema, "P(a)"),
		mustPointed(rpqSchema, "Q(a)"),
	})
	return engine.Job{
		Kind: engine.KindCQ, Task: engine.TaskWeaklyMostGeneral,
		Examples: e,
		Opts:     fitting.SearchOpts{MaxAtoms: maxAtoms, MaxVars: maxVars},
	}
}

// BenchmarkStreamTimeToFirstResult compares what a streaming client
// waits for against what a one-shot client waits for on the same
// enumeration: the first flushed answer frame versus the fully buffered
// search. Caching is disabled so every iteration measures a real search.
func BenchmarkStreamTimeToFirstResult(b *testing.B) {
	job := streamWMGJob(4, 5)

	b.Run("first-frame", func(b *testing.B) {
		eng := engine.New(engine.Options{CacheSize: -1})
		defer eng.Close()
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			s := eng.SubmitStream(ctx, job)
			if _, ok := <-s.Answers(); !ok {
				b.Fatal("stream ended without a first answer")
			}
			// First answer in hand: a real client could act on it now.
			// Detach so the rest of the search is not billed to this op.
			cancel()
			s.Wait()
		}
	})

	b.Run("full-stream", func(b *testing.B) {
		eng := engine.New(engine.Options{CacheSize: -1})
		defer eng.Close()
		for i := 0; i < b.N; i++ {
			res := eng.DoStream(context.Background(), job, nil)
			if res.Err != nil || !res.Found {
				b.Fatalf("stream must find answers: %+v", res)
			}
		}
	})

	b.Run("one-shot", func(b *testing.B) {
		eng := engine.New(engine.Options{CacheSize: -1})
		defer eng.Close()
		for i := 0; i < b.N; i++ {
			if res := eng.Do(context.Background(), job); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Figures 2–4 and supporting constructions
// ---------------------------------------------------------------------

// Figure 2 workload: disjoint unions of scaling cycles.
func BenchmarkDisjointUnion(b *testing.B) {
	c1 := genex.DirectedCycle(50)
	c2 := genex.DirectedCycle(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instance.DisjointUnion(c1, c2); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 3 workload: direct products of scaling cycles.
func BenchmarkDirectProduct(b *testing.B) {
	c1 := genex.DirectedCycle(30)
	c2 := genex.DirectedCycle(37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instance.Product(c1, c2); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 4 workload: tree encoding and decoding of c-acyclic CQs plus
// the proper automaton (Lemma 3.18).
func BenchmarkTreeEncode(b *testing.B) {
	rp := MustSchema(Rel{Name: "R", Arity: 2}, Rel{Name: "P", Arity: 1})
	q := cq.MustParse(rp, "q(x1,x2) :- R(x1,z), R(z,zp), R(x1,zp), P(x2)")
	proper := cqtree.ProperAutomaton(rp, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := cqtree.Encode(q, 3)
		if err != nil {
			b.Fatal(err)
		}
		if !proper.Accepts(t) {
			b.Fatal("encoding must be proper")
		}
		if _, err := cqtree.Decode(t, rp, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Frontier construction (Thm 2.12 / Def 3.21) on scaling paths.
func BenchmarkFrontier(b *testing.B) {
	for n := 2; n <= 5; n++ {
		p := genex.DirectedPath(n)
		b.Run(fmt.Sprintf("path=%d", n), func(b *testing.B) {
			var members int
			for i := 0; i < b.N; i++ {
				ms, err := Frontier(p)
				if err != nil {
					b.Fatal(err)
				}
				members = len(ms)
			}
			b.ReportMetric(float64(members), "members")
		})
	}
}

// Dual construction (Thm 2.16(2)) on scaling paths: the dual of P_n is
// hom-equivalent to the tournament T_n.
func BenchmarkDualConstruction(b *testing.B) {
	for n := 2; n <= 4; n++ {
		p := genex.DirectedPath(n)
		b.Run(fmt.Sprintf("path=%d", n), func(b *testing.B) {
			var elements int
			for i := 0; i < b.N; i++ {
				D, err := duality.DualOf(p)
				if err != nil {
					b.Fatal(err)
				}
				elements = D[0].I.DomSize()
			}
			b.ReportMetric(float64(elements), "dual_elements")
		})
	}
}

// The fitting automaton of Theorem 3.20: construction plus emptiness.
func BenchmarkFittingAutomaton(b *testing.B) {
	e := fitting.MustExamples(genex.SchemaR(), 0,
		[]Example{mustPointed(genex.SchemaR(), "R(a,b)")},
		[]Example{instance.NewPointed(instance.New(genex.SchemaR()))})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auto, err := cqtree.FittingAutomaton(e, 2, 4000)
		if err != nil {
			b.Fatal(err)
		}
		if !auto.NonEmpty() {
			b.Fatal("language must be non-empty")
		}
	}
}
