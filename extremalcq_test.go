package extremalcq

import (
	"testing"

	"extremalcq/internal/genex"
)

// End-to-end through the public facade: the quickstart flow on Figure
// 1's EmpInfo data.
func TestFacadeQuickstart(t *testing.T) {
	sch := MustSchema(
		Rel{Name: "inDept", Arity: 2},
		Rel{Name: "managedBy", Arity: 2},
		Rel{Name: "isGauss", Arity: 1},
	)
	db, err := ParseFacts(sch, `
		inDept(hilbert, math).     managedBy(hilbert, gauss)
		inDept(turing, cs).        managedBy(turing, vonneumann)
		inDept(einstein, physics). managedBy(einstein, gauss)
		isGauss(gauss)
	`)
	if err != nil {
		t.Fatal(err)
	}
	E, err := NewExamples(sch, 1,
		[]Example{NewExample(db, "hilbert"), NewExample(db, "einstein")},
		[]Example{NewExample(db, "turing")})
	if err != nil {
		t.Fatal(err)
	}
	q1, err := ParseCQ(sch, "q(x) :- managedBy(x,y), isGauss(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyFitting(q1, E) {
		t.Error("the paper's q1 analog must fit Example 1.1")
	}
	ms, ok, err := ConstructMostSpecific(E)
	if err != nil || !ok {
		t.Fatalf("most-specific fitting must exist: %v %v", ok, err)
	}
	if !VerifyMostSpecific(ms, E) {
		t.Error("constructed most-specific must verify")
	}
	if !ms.ContainedIn(q1) {
		t.Error("the most-specific fitting is contained in every fitting")
	}
	ans := q1.Core().Evaluate(db)
	if len(ans) != 2 {
		t.Errorf("q1 returns %v, want hilbert and einstein", ans)
	}
	u, ok, err := ConstructFittingUCQ(E)
	if err != nil || !ok {
		t.Fatal("fitting UCQ must exist")
	}
	if !VerifyFittingUCQ(u, E) {
		t.Error("canonical UCQ must fit")
	}
}

// The facade's order-theoretic helpers compose: product, union, core,
// simulation, frontier, dual.
func TestFacadeOrderTheory(t *testing.T) {
	c3 := genex.DirectedCycle(3)
	c2 := genex.DirectedCycle(2)
	p, err := Product(c3, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !HomExists(p, c3) || !HomExists(p, c2) {
		t.Error("product projects both ways")
	}
	u, err := DisjointUnion(c3, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !HomExists(c3, u) || !HomExists(c2, u) {
		t.Error("union embeds both ways")
	}
	core := Core(u)
	if !HomEquivalent(core, u) {
		t.Error("core is equivalent")
	}
	if !CAcyclic(genex.DirectedPath(3)) || CAcyclic(c3) {
		t.Error("c-acyclicity misreported")
	}
	if !ArcConsistent(c3, c2) {
		t.Error("AC(C3->C2) holds (tree implication)")
	}
	if _, err := Frontier(genex.DirectedPath(2)); err != nil {
		t.Errorf("frontier of a path: %v", err)
	}
	if _, err := DualOf(genex.DirectedPath(2)); err != nil {
		t.Errorf("dual of a path: %v", err)
	}
	F, D := GHRV(3)
	ok, err := IsHomDuality(F, D)
	if err != nil || !ok {
		t.Error("GHRV duality must verify through the facade")
	}
}

// Tree-CQ flow through the facade.
func TestFacadeTree(t *testing.T) {
	sch := MustSchema(Rel{Name: "R", Arity: 2}, Rel{Name: "P", Arity: 1})
	pos, err := ParseExample(sch, "R(a,b). P(b) @ a")
	if err != nil {
		t.Fatal(err)
	}
	neg, err := ParseExample(sch, "R(a,b) @ a")
	if err != nil {
		t.Fatal(err)
	}
	E, err := NewExamples(sch, 1, []Example{pos}, []Example{neg})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := FittingTreeExists(E)
	if err != nil || !ok {
		t.Fatalf("tree fitting must exist: %v %v", ok, err)
	}
	dag, _, err := ConstructFittingTree(E)
	if err != nil {
		t.Fatal(err)
	}
	q, err := dag.Expand(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !IsTreeCQ(q) {
		t.Error("witness must be a tree CQ")
	}
	fits, err := VerifyFittingTree(q, E)
	if err != nil || !fits {
		t.Error("witness must fit")
	}
	if !Simulates(q.Example(), pos) || Simulates(q.Example(), neg) {
		t.Error("simulation checks must agree with fitting")
	}
}
