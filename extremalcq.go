// Package extremalcq is a Go implementation of "Extremal Fitting
// Problems for Conjunctive Queries" (ten Cate, Dalmau, Funk, Lutz;
// PODS 2023, arXiv:2206.05080).
//
// Given a collection of labeled data examples E = (E+, E-), a query q
// *fits* E if every positive example is an answer and no negative
// example is. This package constructs and verifies fitting conjunctive
// queries (CQs), unions of conjunctive queries (UCQs) and tree CQs, in
// all the extremal flavors the paper studies:
//
//   - arbitrary fittings (Section 3.1),
//   - most-specific fittings — the direct product of the positive
//     examples (Section 3.2),
//   - weakly most-general fittings — characterized by frontiers in the
//     homomorphism pre-order (Section 3.3),
//   - bases of most-general fittings — characterized by relativized
//     homomorphism dualities (Section 3.3),
//   - unique fittings (Section 3.4),
//
// plus the UCQ variants of Section 4 and the tree-CQ variants
// (simulations, unravelings, complete initial pieces) of Section 5.
//
// The facade re-exports the public surface of the internal packages:
//
//	schema    — relational schemas
//	instance  — instances, pointed instances, products, disjoint unions
//	hom       — homomorphisms, cores, arc consistency
//	cq, ucq   — (unions of) conjunctive queries
//	frontier  — frontiers (Def 3.21/3.22)
//	duality   — homomorphism dualities (Thm 2.16, Prop 4.7)
//	nta       — bottom-up tree automata (Section 2.3)
//	cqtree    — tree encodings of c-acyclic CQs + automata (Section 3.3)
//	fitting   — CQ fitting problems (Section 3)
//	ucqfit    — UCQ fitting problems (Section 4)
//	tree      — tree-CQ fitting problems (Section 5)
//	engine    — concurrent fitting engine (batching, caching, deadlines)
//	store     — persistent fingerprint-keyed result store (segment log)
//
// The engine layer runs any kind × task combination above as a Job on a
// bounded worker pool, memoizing homomorphism checks, cores and direct
// products in a per-engine thread-safe cache and coalescing identical
// in-flight jobs (single-flight dedup), so that duplicate-heavy batches
// do each distinct computation once. Any number of caching engines can
// be live in one process — each owns its memo outright. The solver
// algorithms check their context inside the search loops, so per-job
// timeouts, canceled submission contexts and Close stop in-flight work
// promptly instead of abandoning goroutines:
//
//	eng := extremalcq.NewEngine(extremalcq.EngineOptions{Workers: 8})
//	defer eng.Close()
//	results := eng.DoBatch(ctx, jobs)  // jobs built via Job or JobSpec
//	fmt.Println(eng.Stats().Cache)     // hit rates per memo class
//
// Attaching a persistent store (OpenStore + EngineOptions.Store) makes
// completed results durable: a restarted engine answers
// previously-computed fingerprints from disk without running a solver.
// EngineOptions.MemoSpill additionally persists the memo's hom-check
// verdicts, cores and direct products, so a restarted engine also
// accelerates novel jobs that share sub-computations with earlier work.
//
// The cqfit CLI and the cqfitd HTTP/JSON service are thin wrappers over
// this same execution path.
//
// Quickstart:
//
//	sch := extremalcq.MustSchema(extremalcq.Rel{Name: "R", Arity: 2})
//	pos, _ := extremalcq.ParseExample(sch, "R(a,b). R(b,c) @ a")
//	neg, _ := extremalcq.ParseExample(sch, "R(a,a) @ a")
//	E, _ := extremalcq.NewExamples(sch, 1, []extremalcq.Example{pos}, []extremalcq.Example{neg})
//	q, ok, _ := extremalcq.ConstructFitting(E)
//	if ok { fmt.Println(q) } // a fitting CQ
package extremalcq

import (
	"extremalcq/internal/cq"
	"extremalcq/internal/duality"
	"extremalcq/internal/engine"
	"extremalcq/internal/fitting"
	"extremalcq/internal/frontier"
	"extremalcq/internal/hom"
	"extremalcq/internal/instance"
	"extremalcq/internal/obs"
	"extremalcq/internal/schema"
	"extremalcq/internal/store"
	"extremalcq/internal/tree"
	"extremalcq/internal/ucqfit"
)

// Re-exported core types.
type (
	// Schema is a relational schema.
	Schema = schema.Schema
	// Rel declares a relation symbol with its arity.
	Rel = schema.Relation
	// Value is an active-domain element.
	Value = instance.Value
	// Fact is an atomic fact R(a1..an).
	Fact = instance.Fact
	// Instance is a finite set of facts.
	Instance = instance.Instance
	// Example is a pointed instance (I, ā); data examples are pointed
	// instances whose distinguished elements occur in facts.
	Example = instance.Pointed
	// CQ is a conjunctive query.
	CQ = cq.CQ
	// UCQ is a union of conjunctive queries.
	UCQ = ucqfit.UCQ
	// Examples is a collection E = (E+, E-) of labeled examples.
	Examples = fitting.Examples
	// SearchOpts bounds the synthesis searches.
	SearchOpts = fitting.SearchOpts
	// TreeDAG is a succinct DAG representation of a fitting tree CQ.
	TreeDAG = tree.DAG
)

// Schema construction.
var (
	NewSchema  = schema.New
	MustSchema = schema.MustNew
)

// Instances and examples.
var (
	NewInstance  = instance.New
	ParseFacts   = instance.ParseFacts
	ParseExample = instance.ParsePointed
	NewExample   = instance.NewPointed
	// Product computes the direct product of two pointed instances
	// (greatest lower bound, Prop 2.7).
	Product = instance.Product
	// ProductAll folds Product over a list; the empty product is the
	// single-element all-facts instance.
	ProductAll = instance.ProductAll
	// DisjointUnion computes the disjoint union identifying the
	// distinguished tuples (least upper bound, Prop 2.2).
	DisjointUnion = instance.DisjointUnion
	// Components splits a pointed instance into its connected components
	// (Example 2.3 semantics).
	Components = instance.Components
	// CAcyclic tests c-acyclicity (Def 2.10).
	CAcyclic = instance.CAcyclic
)

// Homomorphisms and cores.
var (
	// HomExists tests for a homomorphism between pointed instances.
	HomExists = hom.Exists
	// HomFindAll enumerates all homomorphisms between pointed instances,
	// yielding each as the search reaches it.
	HomFindAll = hom.FindAll
	// HomEquivalent tests homomorphic equivalence.
	HomEquivalent = hom.Equivalent
	// Core computes the core of a pointed instance.
	Core = hom.Core
	// ArcConsistent runs the arc-consistency procedure of Prop 4.7.
	ArcConsistent = hom.ArcConsistent
	// Simulates tests e1 ⪯ e2 (Section 5 simulations).
	Simulates = tree.Simulates
)

// Queries.
var (
	ParseCQ        = cq.Parse
	NewCQ          = cq.New
	CQFromExample  = cq.FromExample
	ParseUCQ       = ucqfit.Parse
	NewUCQ         = ucqfit.New
	IsTreeCQ       = tree.IsTreeCQ
	UnravelExample = tree.Unravel
)

// Frontiers and dualities.
var (
	// Frontier computes a frontier for a c-acyclic UNP pointed instance
	// (Def 3.21/3.22).
	Frontier = frontier.ForPointed
	// HasFrontier tests frontier existence (Thm 2.12).
	HasFrontier = frontier.HasFrontier
	// DualOf computes D with ({e}, D) a homomorphism duality
	// (Thm 2.16(2)), for c-acyclic e over binary schemas.
	DualOf = duality.DualOf
	// IsHomDuality decides the HomDual problem (Section 4).
	IsHomDuality = duality.IsHomDuality
	// SingleDualityExists runs the dismantling existence test
	// (Thm 3.30 sketch).
	SingleDualityExists = duality.SingleDualityExists
	// GHRV returns the path/tournament duality of Example 2.14.
	GHRV = duality.GHRV
)

// Labeled example collections.
var (
	NewExamples          = fitting.NewExamples
	DefinabilityExamples = fitting.DefinabilityExamples
)

// CQ fitting (Section 3).
var (
	VerifyFitting           = fitting.Verify
	FittingExists           = fitting.Exists
	ConstructFitting        = fitting.Construct
	VerifyMostSpecific      = fitting.VerifyMostSpecific
	ConstructMostSpecific   = fitting.ConstructMostSpecific
	VerifyWeaklyMostGeneral = fitting.VerifyWeaklyMostGeneral
	SearchWeaklyMostGeneral = fitting.SearchWeaklyMostGeneral
	// ForEachWeaklyMostGeneral streams every weakly most-general fitting
	// CQ within the bounds as it is found, deduplicated incrementally.
	ForEachWeaklyMostGeneral = fitting.ForEachWeaklyMostGeneral
	AllWeaklyMostGeneral     = fitting.AllWeaklyMostGeneral
	VerifyBasis              = fitting.VerifyBasis
	SearchBasis              = fitting.SearchBasis
	VerifyUnique             = fitting.VerifyUnique
	UniqueFittingExists      = fitting.ExistsUnique
	DefaultSearch            = fitting.DefaultSearch
)

// UCQ fitting (Section 4).
var (
	VerifyFittingUCQ      = ucqfit.Verify
	FittingUCQExists      = ucqfit.Exists
	ConstructFittingUCQ   = ucqfit.Construct
	VerifyMostSpecificUCQ = ucqfit.VerifyMostSpecific
	VerifyMostGeneralUCQ  = ucqfit.VerifyMostGeneral
	MostGeneralUCQExists  = ucqfit.ExistsMostGeneral
	SearchMostGeneralUCQ  = ucqfit.SearchMostGeneral
	// ForEachMostGeneralUCQCandidate streams the candidate disjuncts of
	// the bounded most-general UCQ search as the enumeration reaches
	// them; CombineMostGeneralUCQ finishes the search over the collected
	// candidates.
	ForEachMostGeneralUCQCandidate = ucqfit.ForEachMostGeneralCandidate
	CombineMostGeneralUCQ          = ucqfit.CombineMostGeneral
	VerifyUniqueUCQ                = ucqfit.VerifyUnique
	UniqueUCQExists                = ucqfit.ExistsUnique
)

// The fitting engine: batched, concurrent, memoized execution of all of
// the above.
type (
	// Engine schedules fitting jobs across a bounded worker pool with a
	// shared memoization cache.
	Engine = engine.Engine
	// EngineOptions configures NewEngine.
	EngineOptions = engine.Options
	// EngineStats is a snapshot of queue depth, cache hit rates and
	// per-task latency.
	EngineStats = engine.Stats
	// Job is one fitting problem (kind × task over labeled examples).
	Job = engine.Job
	// JobSpec is the text-level form of a Job (also the cqfitd wire
	// format).
	JobSpec = engine.JobSpec
	// Result is the outcome of a Job.
	Result = engine.Result
	// JobKind selects the query language of a Job.
	JobKind = engine.Kind
	// JobTask selects the fitting problem of a Job.
	JobTask = engine.Task
	// Stream is a handle to a streaming job submission
	// (Engine.SubmitStream / Engine.DoStream): each enumerated answer is
	// delivered on Stream.Answers the moment the solver verifies it, and
	// Stream.Wait returns the terminal summary.
	Stream = engine.Stream
	// StreamAnswer is one enumerated answer frame of a Stream.
	StreamAnswer = engine.Answer
	// TraceReport is the solver explain report of a traced job
	// (Job.Trace / JobSpec.Trace): per-phase durations, search-progress
	// counters and the slowest spans. Carried on Result.Trace.
	TraceReport = obs.Report
	// TracePhaseStat is one phase row of a TraceReport.
	TracePhaseStat = obs.PhaseStat
)

// Job kinds and tasks.
const (
	KindCQ   = engine.KindCQ
	KindUCQ  = engine.KindUCQ
	KindTree = engine.KindTree

	TaskExists            = engine.TaskExists
	TaskConstruct         = engine.TaskConstruct
	TaskMostSpecific      = engine.TaskMostSpecific
	TaskWeaklyMostGeneral = engine.TaskWeaklyMostGeneral
	TaskBasis             = engine.TaskBasis
	TaskUnique            = engine.TaskUnique
	TaskVerify            = engine.TaskVerify
)

// Engine construction and helpers.
var (
	// NewEngine starts a fitting engine; Close it when done.
	NewEngine = engine.New
	// ParseJobSchema parses "R/2,P/1"-style schema declarations.
	ParseJobSchema = engine.ParseSchema
	// ErrEngineClosed is reported by jobs submitted to a closed engine.
	ErrEngineClosed = engine.ErrClosed
	// ErrQueueFull is reported by Engine.TrySubmit-based admission
	// control when the job queue has no room.
	ErrQueueFull = engine.ErrQueueFull
)

// The persistent result store: an append-only, CRC-checked segment log
// of completed results keyed by job fingerprint. Attach one via
// EngineOptions.Store and answers survive process restarts — a cold
// engine serves previously-computed fingerprints from disk without
// running a solver.
type (
	// Store is a persistent fingerprint-keyed result store; open with
	// OpenStore, attach via EngineOptions.Store, Close only after the
	// engine using it has been closed.
	Store = store.Store
	// StoreOptions configures OpenStore (size budget, segment size).
	StoreOptions = store.Options
	// StoreStats is a snapshot of store activity and on-disk size.
	StoreStats = store.Stats
)

var (
	// OpenStore opens (creating if needed) a result store directory,
	// recovering torn or corrupt segment tails by truncation.
	OpenStore = store.Open
	// ErrStoreClosed is reported by operations on a closed store.
	ErrStoreClosed = store.ErrClosed
)

// Tree-CQ fitting (Section 5).
var (
	VerifyFittingTree           = tree.Verify
	FittingTreeExists           = tree.Exists
	ConstructFittingTree        = tree.Construct
	VerifyMostSpecificTree      = tree.VerifyMostSpecific
	MostSpecificTreeExists      = tree.ExistsMostSpecific
	ConstructMostSpecificTree   = tree.ConstructMostSpecific
	VerifyWeaklyMostGeneralTree = tree.VerifyWeaklyMostGeneral
	SearchWeaklyMostGeneralTree = tree.SearchWeaklyMostGeneral
	// ForEachWeaklyMostGeneralTree streams every weakly most-general
	// fitting tree CQ within the bounds as it is found.
	ForEachWeaklyMostGeneralTree = tree.ForEachWeaklyMostGeneral
	AllWeaklyMostGeneralTree     = tree.AllWeaklyMostGeneral
	VerifyUniqueTree             = tree.VerifyUnique
	UniqueTreeExists             = tree.ExistsUnique
	VerifyBasisTree              = tree.VerifyBasis
	SearchBasisTree              = tree.SearchBasis
)
